(* The benchmark suite against the paper's Table 2: every seeded bug must
   be exposed at exactly its documented preemption bound — found there,
   missed one bound lower — and every correct variant must verify clean. *)

module Registry = Icb_models.Registry
module Sresult = Icb_search.Sresult

let check = Alcotest.check

let bug_case (entry : Registry.entry) (bug : Registry.bug_spec) =
  Alcotest.test_case
    (Printf.sprintf "%s/%s exposed at bound %d" entry.model_name bug.bug_name
       bug.expected_bound)
    `Slow
    (fun () ->
      let prog = bug.bug_program () in
      (match Icb.check prog ~max_bound:bug.expected_bound with
      | Some found ->
        check Alcotest.int "minimal preemption count" bug.expected_bound
          found.Sresult.preemptions
      | None ->
        Alcotest.failf "bug not found within bound %d" bug.expected_bound);
      if bug.expected_bound > 0 then
        check Alcotest.bool
          (Printf.sprintf "not found at bound %d" (bug.expected_bound - 1))
          true
          (Icb.check prog ~max_bound:(bug.expected_bound - 1) = None))

let correct_case (entry : Registry.entry) prog_fn =
  Alcotest.test_case
    (Printf.sprintf "%s correct variant is clean" entry.model_name)
    `Slow
    (fun () ->
      match Icb.check (prog_fn ()) ~max_bound:3 with
      | Some bug -> Alcotest.failf "unexpected bug: %s" bug.Sresult.msg
      | None -> ())

let table2_cases =
  List.concat_map
    (fun (entry : Registry.entry) ->
      let correct =
        match entry.correct_program with
        | Some p -> [ correct_case entry p ]
        | None -> []
      in
      correct @ List.map (bug_case entry) entry.bugs)
    Registry.all

let table2_totals =
  [
    Alcotest.test_case "16 bugs total (7 seeded + 9 new, per Table 2's rows)"
      `Quick (fun () ->
        (* The paper's Table 2 caption says "a total of 14 bugs", but its
           own rows sum to 16 — and the text confirms 7 previously known
           bugs (Bluetooth 1 + WSQ 3 + TxMgr 3) plus 9 previously unknown
           (APE 4 + Dryad 5).  We reproduce the rows. *)
        check Alcotest.int "total" 16 Registry.total_bugs);
    Alcotest.test_case "9 previously unknown (APE + Dryad)" `Quick (fun () ->
        let unknown =
          List.concat_map (fun (e : Registry.entry) -> e.Registry.bugs)
            Registry.all
          |> List.filter (fun (b : Registry.bug_spec) -> not b.previously_known)
        in
        check Alcotest.int "previously unknown" 9 (List.length unknown));
    Alcotest.test_case "per-bound histogram matches Table 2" `Quick (fun () ->
        let hist = Array.make 4 0 in
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun (b : Registry.bug_spec) ->
                hist.(b.expected_bound) <- hist.(b.expected_bound) + 1)
              e.bugs)
          Registry.all;
        (* Table 2 column sums over its rows: bound 0: 3, 1: 7, 2: 5, 3: 1 *)
        check (Alcotest.array Alcotest.int) "histogram" [| 3; 7; 5; 1 |] hist);
    Alcotest.test_case "every bug within bound 2 preemptions except one"
      `Quick (fun () ->
        (* the paper: each newly found bug needed at most 2 preemptions *)
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun (b : Registry.bug_spec) ->
                if not b.previously_known then
                  check Alcotest.bool
                    (e.model_name ^ "/" ^ b.bug_name ^ " <= 2")
                    true (b.expected_bound <= 2))
              e.bugs)
          Registry.all);
  ]

(* The Figure 3 narrative: the Dryad use-after-free needs exactly one
   preemption and several non-preempting context switches. *)
let fig3_cases =
  [
    Alcotest.test_case "Dryad UAF: 1 preemption, >= 6 non-preempting switches"
      `Slow (fun () ->
        let prog = Icb_models.Dryad.program Icb_models.Dryad.Bug_close_waits_ack in
        match Icb.check prog ~max_bound:1 with
        | None -> Alcotest.fail "expected the use-after-free"
        | Some bug ->
          check Alcotest.int "one preemption" 1 bug.Sresult.preemptions;
          check Alcotest.bool
            (Printf.sprintf "switches=%d >= 7" bug.context_switches)
            true
            (bug.context_switches - bug.preemptions >= 6);
          check Alcotest.bool "is a use-after-free" true
            (bug.key = "use-after-free"));
  ]

(* Structural facts feeding Table 1. *)
let table1_cases =
  [
    Alcotest.test_case "thread counts match the paper" `Quick (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            match e.correct_program with
            | None -> ()
            | Some p ->
              let r =
                Icb.run
                  ~options:
                    {
                      Icb_search.Collector.default_options with
                      max_executions = Some 200;
                    }
                  ~strategy:
                    (Icb_search.Explore.Icb { max_bound = Some 1; cache = true })
                  (p ())
              in
              check Alcotest.int
                (e.model_name ^ " threads")
                e.paper_threads r.Sresult.max_threads)
          Registry.all);
    Alcotest.test_case "model sources have plausible sizes" `Quick (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            match e.correct_source with
            | Some src ->
              let loc = Registry.loc_of_source src in
              check Alcotest.bool
                (Printf.sprintf "%s LOC=%d in range" e.model_name loc)
                true
                (loc > 15 && loc < 400)
            | None -> ())
          Registry.all);
  ]

(* Bug traces replay deterministically through the facade. *)
let replay_cases =
  [
    Alcotest.test_case "every found bug replays to the same failure" `Slow
      (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun (b : Registry.bug_spec) ->
                let prog = b.bug_program () in
                match Icb.check prog ~max_bound:b.expected_bound with
                | None -> Alcotest.failf "%s not found" b.bug_name
                | Some bug ->
                  let module E = (val Icb.engine prog) in
                  let final =
                    Icb_search.Explore.replay (module E) bug.Sresult.schedule
                  in
                  (match E.status final with
                  | Icb_search.Engine.Failed { key; _ } ->
                    check Alcotest.string
                      (e.model_name ^ "/" ^ b.bug_name ^ " replays")
                      bug.key key
                  | Icb_search.Engine.Deadlock _ ->
                    check Alcotest.string
                      (e.model_name ^ "/" ^ b.bug_name ^ " replays")
                      bug.key "deadlock"
                  | _ -> Alcotest.failf "%s: replay did not fail" b.bug_name))
              e.bugs)
          Registry.all);
    Alcotest.test_case "explain produces one line per scheduled step" `Quick
      (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        match Icb.check prog with
        | None -> Alcotest.fail "expected a bug"
        | Some bug ->
          check Alcotest.int "narrative length"
            (List.length bug.Sresult.schedule)
            (List.length (Icb.explain prog bug)));
  ]

(* Extra models beyond the paper's suite. *)
let peterson_cases =
  [
    Alcotest.test_case "Peterson verifies over its full state space" `Quick
      (fun () ->
        let r =
          Icb.run
            (Icb_models.Peterson.program Icb_models.Peterson.Correct)
            ~strategy:
              (Icb_search.Explore.Icb { max_bound = None; cache = true })
        in
        check Alcotest.bool "complete" true r.Sresult.complete;
        check Alcotest.int "no bugs" 0 (List.length r.bugs));
    Alcotest.test_case "both broken Petersons violate mutual exclusion" `Quick
      (fun () ->
        List.iter
          (fun v ->
            match Icb.check (Icb_models.Peterson.program v) ~max_bound:3 with
            | Some bug ->
              check Alcotest.bool
                (Icb_models.Peterson.variant_name v ^ " is the mutex assert")
                true
                (bug.Sresult.key = "assert:mutual exclusion violated")
            | None ->
              Alcotest.failf "%s: no bug found"
                (Icb_models.Peterson.variant_name v))
          [
            Icb_models.Peterson.Bug_check_before_set;
            Icb_models.Peterson.Bug_turn_before_flag;
          ]);
    Alcotest.test_case
      "set-then-check flags are safe under sequential consistency" `Quick
      (fun () ->
        (* a finding from building the model: without the turn variable,
           raising your flag before polling the other's cannot let both
           threads in under SC (the four accesses would form a cycle);
           the checker proves it over the full space *)
        let src =
          {|
volatile var flag[2]: bool;
volatile var inCS: int = 0;
event manual d0; event manual d1;
proc worker(id: int) {
  flag[id] = true;
  var f: bool = flag[1 - id];
  if (!f) {
    var old: int;
    old = fetch_add(inCS, 1);
    assert(old == 0, "mutual exclusion violated");
    old = fetch_add(inCS, -1);
  }
  flag[id] = false;
  if (id == 0) { signal(d0); } else { signal(d1); }
}
main { spawn worker(0); spawn worker(1); wait(d0); wait(d1); }
|}
        in
        let r =
          Icb.run (Icb.compile src)
            ~strategy:
              (Icb_search.Explore.Icb { max_bound = None; cache = true })
        in
        check Alcotest.bool "complete" true r.Sresult.complete;
        check Alcotest.int "no bugs" 0 (List.length r.bugs));
  ]

let () =
  Alcotest.run "models"
    [
      ("table2", table2_cases);
      ("totals", table2_totals);
      ("fig3", fig3_cases);
      ("table1", table1_cases);
      ("peterson", peterson_cases);
      ("replay", replay_cases);
    ]
