module Vclock = Icb_race.Vclock
module Vcdetect = Icb_race.Vcdetect
module Goldilocks = Icb_race.Goldilocks
module Hbsig = Icb_race.Hbsig
module Interp = Icb_machine.Interp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- vector clocks -------------------------------------------------------- *)

let clock_gen =
  QCheck.Gen.(
    map
      (fun l ->
        List.fold_left
          (fun c (t, n) -> Vclock.set c t n)
          Vclock.empty l)
      (list_size (int_range 0 6) (pair (int_range 0 5) (int_range 0 10))))

let clock = QCheck.make clock_gen

let vclock_tests =
  [
    Alcotest.test_case "get of empty is zero" `Quick (fun () ->
        check Alcotest.int "zero" 0 (Vclock.get Vclock.empty 3));
    Alcotest.test_case "inc bumps one component" `Quick (fun () ->
        let c = Vclock.inc (Vclock.inc Vclock.empty 2) 2 in
        check Alcotest.int "two" 2 (Vclock.get c 2);
        check Alcotest.int "others zero" 0 (Vclock.get c 0));
    qtest
      (QCheck.Test.make ~name:"join is commutative" ~count:300
         (QCheck.pair clock clock) (fun (a, b) ->
           Vclock.equal (Vclock.join a b) (Vclock.join b a)));
    qtest
      (QCheck.Test.make ~name:"join is associative" ~count:300
         (QCheck.triple clock clock clock) (fun (a, b, c) ->
           Vclock.equal
             (Vclock.join a (Vclock.join b c))
             (Vclock.join (Vclock.join a b) c)));
    qtest
      (QCheck.Test.make ~name:"join is idempotent" ~count:300 clock (fun a ->
           Vclock.equal (Vclock.join a a) a));
    qtest
      (QCheck.Test.make ~name:"join is the least upper bound" ~count:300
         (QCheck.pair clock clock) (fun (a, b) ->
           let j = Vclock.join a b in
           Vclock.leq a j && Vclock.leq b j));
    qtest
      (QCheck.Test.make ~name:"leq is antisymmetric" ~count:300
         (QCheck.pair clock clock) (fun (a, b) ->
           (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b));
    qtest
      (QCheck.Test.make ~name:"inc strictly increases" ~count:300
         (QCheck.pair clock (QCheck.make (QCheck.Gen.int_range 0 5)))
         (fun (a, t) ->
           let a' = Vclock.inc a t in
           Vclock.leq a a' && not (Vclock.leq a' a)));
  ]

(* --- detectors on hand-built event streams --------------------------------- *)

let v0 : Interp.var_id = Interp.Gvar (0, 0)
let l0 : Interp.var_id = Interp.Svar (0, 0)

let data ?(write = true) tid var : Interp.event = Interp.Ev_data { tid; var; write }
let sync tid var : Interp.event = Interp.Ev_sync { tid; var }
let fork parent child : Interp.event = Interp.Ev_fork { parent; child }

let vc_races events = Result.is_error (Vcdetect.observe Vcdetect.empty events)

let gold_races events =
  Result.is_error (Goldilocks.observe Goldilocks.empty events)

let both name expected events =
  Alcotest.test_case name `Quick (fun () ->
      check Alcotest.bool ("vclock: " ^ name) expected (vc_races events);
      check Alcotest.bool ("goldilocks: " ^ name) expected (gold_races events))

let detector_tests =
  [
    both "unsynchronized write-write races" true
      [ fork 0 1; data 0 v0; data 1 v0 ];
    both "read-read does not race" false
      [ fork 0 1; data ~write:false 0 v0; data ~write:false 1 v0 ];
    both "write then unsynchronized read races" true
      [ fork 0 1; data 0 v0; data ~write:false 1 v0 ];
    both "lock-ordered accesses do not race" false
      [
        fork 0 1;
        sync 0 l0; data 0 v0; sync 0 l0;  (* lock; write; unlock *)
        sync 1 l0; data 1 v0; sync 1 l0;
      ];
    both "distinct locks do not order" true
      [
        fork 0 1;
        sync 0 l0; data 0 v0; sync 0 l0;
        sync 1 (Interp.Svar (1, 0)); data 1 v0; sync 1 (Interp.Svar (1, 0));
      ];
    both "fork orders parent-before-child" false
      [ data 0 v0; fork 0 1; data 1 v0 ];
    both "no fork edge, no order" true [ fork 0 1; data 1 v0; data 0 v0 ];
    both "same thread never races with itself" false
      [ data 0 v0; data ~write:false 0 v0; data 0 v0 ];
    both "volatile-style sync accesses do not race" false
      [ fork 0 1; sync 0 v0; sync 1 v0 ];
    both "transitive publication through a chain" false
      [
        fork 0 1; fork 0 2;
        data 0 v0;
        sync 0 l0;
        sync 1 l0;
        sync 1 (Interp.Svar (1, 0));
        sync 2 (Interp.Svar (1, 0));
        data ~write:false 2 v0;
      ];
    both "read shared, then unsynchronized write races with the reader" true
      [
        fork 0 1;
        sync 0 l0; data ~write:false 0 v0; sync 0 l0;
        data 1 v0;
      ];
  ]

(* --- agreement of the two detectors on random structured streams ----------- *)

(* Streams are generated program-like: a bounded number of threads, each
   event either a data access, a lock-protected data access, or a sync
   access; forks happen up-front so every thread is reachable. *)
let stream_gen : Interp.event list QCheck.Gen.t =
  QCheck.Gen.(
    let nthreads = 3 in
    let event =
      int_range 0 (nthreads - 1) >>= fun tid ->
      frequency
        [
          ( 3,
            map2
              (fun v write -> [ data ~write tid (Interp.Gvar (v, 0)) ])
              (int_range 0 2) bool );
          ( 3,
            map3
              (fun l v write ->
                [
                  sync tid (Interp.Svar (l, 0));
                  data ~write tid (Interp.Gvar (v, 0));
                  sync tid (Interp.Svar (l, 0));
                ])
              (int_range 0 1) (int_range 0 2) bool );
          (2, map (fun l -> [ sync tid (Interp.Svar (l, 0)) ]) (int_range 0 1));
        ]
    in
    map
      (fun chunks -> [ fork 0 1; fork 0 2 ] @ List.concat chunks)
      (list_size (int_range 0 25) event))

let agreement_tests =
  [
    qtest
      (QCheck.Test.make ~name:"vclock and goldilocks agree" ~count:1000
         (QCheck.make stream_gen) (fun events ->
           vc_races events = gold_races events));
    qtest
      (QCheck.Test.make ~name:"detectors agree on the racing variable"
         ~count:1000 (QCheck.make stream_gen) (fun events ->
           match
             ( Vcdetect.observe Vcdetect.empty events,
               Goldilocks.observe Goldilocks.empty events )
           with
           | Ok _, Ok _ -> true
           | Error a, Error b -> a.Icb_race.Report.var = b.Icb_race.Report.var
           | Error _, Ok _ | Ok _, Error _ -> false));
    qtest
      (QCheck.Test.make ~name:"detection is stable under chunked observation"
         ~count:300 (QCheck.make stream_gen) (fun events ->
           (* feeding events one at a time gives the same verdict *)
           let one_shot = vc_races events in
           let incremental =
             let rec go det = function
               | [] -> false
               | e :: rest -> (
                 match Vcdetect.observe det [ e ] with
                 | Ok det -> go det rest
                 | Error _ -> true)
             in
             go Vcdetect.empty events
           in
           one_shot = incremental));
  ]

(* --- happens-before signatures --------------------------------------------- *)

let hb_sig events = Hbsig.signature (Hbsig.observe Hbsig.empty events)

let hbsig_tests =
  [
    Alcotest.test_case "reordering independent steps preserves the signature"
      `Quick (fun () ->
        let a = sync 1 (Interp.Svar (0, 0)) in
        let b = sync 2 (Interp.Svar (1, 0)) in
        check Alcotest.int64 "swap"
          (hb_sig [ fork 0 1; fork 0 2; a; b ])
          (hb_sig [ fork 0 1; fork 0 2; b; a ]));
    Alcotest.test_case "reordering dependent steps changes the signature"
      `Quick (fun () ->
        let a = sync 1 l0 in
        let b = sync 2 l0 in
        check Alcotest.bool "differ" true
          (hb_sig [ fork 0 1; fork 0 2; a; b ]
          <> hb_sig [ fork 0 1; fork 0 2; b; a ]));
    Alcotest.test_case "longer executions have new signatures" `Quick
      (fun () ->
        check Alcotest.bool "prefix differs" true
          (hb_sig [ sync 0 l0 ] <> hb_sig [ sync 0 l0; sync 0 l0 ]));
    Alcotest.test_case
      "machine: equivalent schedules of independent threads collide" `Quick
      (fun () ->
        (* two threads lock distinct mutexes: schedules that interleave them
           differently must produce the same HB signature at the end *)
        let prog =
          Icb.compile
            {|
mutex m1; mutex m2;
proc w1() { lock(m1); unlock(m1); }
proc w2() { lock(m2); unlock(m2); }
main { spawn w1(); spawn w2(); }
|}
        in
        let run schedule =
          let r = Interp.start Interp.Sync_only prog in
          let st = ref r.Interp.state in
          let hbs = ref (Hbsig.observe Hbsig.empty r.Interp.events) in
          List.iter
            (fun t ->
              let res = Interp.step Interp.Sync_only !st t in
              st := res.Interp.state;
              hbs := Hbsig.observe !hbs res.Interp.events)
            schedule;
          Hbsig.signature !hbs
        in
        check Alcotest.int64 "interleavings collide"
          (run [ 0; 0; 1; 2; 1; 2 ])
          (run [ 0; 0; 2; 1; 2; 1 ]));
  ]

(* --- end-to-end: race checking inside the search --------------------------- *)

let search_race_tests =
  [
    Alcotest.test_case "racy model is caught under Sync_only" `Quick (fun () ->
        let prog =
          Icb.compile
            {|
var g: int;
event manual d1; event manual d2;
proc w1() { g = 1; signal(d1); }
proc w2() { g = 2; signal(d2); }
main { spawn w1(); spawn w2(); wait(d1); wait(d2); }
|}
        in
        match Icb.check prog ~max_bound:2 with
        | Some b ->
          check Alcotest.bool "is a race" true
            (String.length b.Icb_search.Sresult.key >= 5
            && String.sub b.key 0 5 = "race:")
        | None -> Alcotest.fail "expected a race");
    Alcotest.test_case "goldilocks config finds the same race" `Quick
      (fun () ->
        let prog =
          Icb.compile
            {|
var g: int;
event manual d1; event manual d2;
proc w1() { g = 1; signal(d1); }
proc w2() { g = 2; signal(d2); }
main { spawn w1(); spawn w2(); wait(d1); wait(d2); }
|}
        in
        let config =
          { Icb_search.Mach_engine.default_config with detector = `Goldilocks }
        in
        match Icb.check ~config prog ~max_bound:2 with
        | Some b ->
          check Alcotest.bool "is a race" true
            (String.sub b.Icb_search.Sresult.key 0 5 = "race:")
        | None -> Alcotest.fail "expected a race");
    Alcotest.test_case "lock-protected model is race-free" `Quick (fun () ->
        let prog =
          Icb.compile
            {|
var g: int;
mutex m;
event manual d1; event manual d2;
proc w1() { lock(m); g = 1; unlock(m); signal(d1); }
proc w2() { lock(m); g = 2; unlock(m); signal(d2); }
main { spawn w1(); spawn w2(); wait(d1); wait(d2); }
|}
        in
        check Alcotest.bool "clean" true (Icb.check prog ~max_bound:5 = None));
  ]

let () =
  Alcotest.run "race"
    [
      ("vclock", vclock_tests);
      ("detectors", detector_tests);
      ("agreement", agreement_tests);
      ("hbsig", hbsig_tests);
      ("search", search_race_tests);
    ]
