(* The effects-based stateless checker over real OCaml code. *)

module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine
module Explore = Icb_search.Explore
module Sresult = Icb_search.Sresult

let check = Alcotest.check

let bug_preemptions name test expected =
  Alcotest.test_case name `Quick (fun () ->
      match CE.check ~max_bound:(expected + 1) test with
      | Some b ->
        check Alcotest.int "preemption bound" expected b.Sresult.preemptions
      | None -> Alcotest.fail "expected a bug")

let clean name ?(max_bound = 3) test =
  Alcotest.test_case name `Quick (fun () ->
      match CE.check ~max_bound test with
      | Some b -> Alcotest.failf "unexpected bug: %s" b.Sresult.msg
      | None -> ())

(* --- primitive semantics -------------------------------------------------- *)

let primitive_tests =
  [
    clean "mutex provides mutual exclusion" (fun () ->
        let m = Api.Mutex.create () in
        let d = Api.Semaphore.create 0 in
        let inside = Api.Data.make 0 in
        for _ = 1 to 2 do
          Api.spawn (fun () ->
              Api.Mutex.with_lock m (fun () ->
                  let v = Api.Data.get inside in
                  if v <> 0 then failwith "two threads inside the lock";
                  Api.Data.set inside 1;
                  Api.Data.set inside 0);
              Api.Semaphore.release d)
        done;
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d);
    bug_preemptions "unlock by a non-owner is reported" (fun () ->
        let m = Api.Mutex.create () in
        Api.Mutex.unlock m)
      0;
    bug_preemptions "auto-reset event loses the second waiter" (fun () ->
        let ev = Api.Event.create () in
        let d = Api.Semaphore.create 0 in
        for _ = 1 to 2 do
          Api.spawn (fun () ->
              Api.Event.wait ev;
              Api.Semaphore.release d)
        done;
        Api.Event.set ev;
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d)
      0;
    clean "manual-reset event wakes both waiters" (fun () ->
        let ev = Api.Event.create ~manual:true () in
        let d = Api.Semaphore.create 0 in
        for _ = 1 to 2 do
          Api.spawn (fun () ->
              Api.Event.wait ev;
              Api.Semaphore.release d)
        done;
        Api.Event.set ev;
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d);
    clean "initially-signaled event passes immediately" (fun () ->
        let ev = Api.Event.create ~signaled:true () in
        Api.Event.wait ev);
    bug_preemptions "reset clears a manual event" (fun () ->
        let ev = Api.Event.create ~manual:true ~signaled:true () in
        Api.Event.reset ev;
        Api.Event.wait ev)
      0;
    clean "semaphore admits its count" (fun () ->
        let s = Api.Semaphore.create 2 in
        Api.Semaphore.acquire s;
        Api.Semaphore.acquire s;
        Api.Semaphore.release s;
        Api.Semaphore.acquire s);
    clean "cas and fetch_add" (fun () ->
        let c = Api.Shared.make 5 in
        if not (Api.Shared.cas c ~expect:5 ~update:7) then failwith "cas 1";
        if Api.Shared.cas c ~expect:5 ~update:9 then failwith "cas 2";
        if Api.Shared.fetch_add c 3 <> 7 then failwith "fetch_add old";
        if Api.Shared.get c <> 10 then failwith "fetch_add new");
    Alcotest.test_case "primitives outside the runtime are rejected" `Quick
      (fun () ->
        match Api.Mutex.create () with
        | exception Api.Chess_misuse _ -> ()
        | _ -> Alcotest.fail "expected Chess_misuse");
  ]

(* --- bug finding ----------------------------------------------------------- *)

let finding_tests =
  [
    bug_preemptions "unsynchronized data cells race at bound 0" (fun () ->
        let x = Api.Data.make 0 in
        let d = Api.Semaphore.create 0 in
        for _ = 1 to 2 do
          Api.spawn (fun () ->
              Api.Data.set x (1 + Api.Data.get x);
              Api.Semaphore.release d)
        done;
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d)
      0;
    bug_preemptions "volatile lost update needs one preemption" (fun () ->
        let x = Api.Shared.make 0 in
        let d = Api.Semaphore.create 0 in
        for _ = 1 to 2 do
          Api.spawn (fun () ->
              let v = Api.Shared.get x in
              Api.Shared.set x (v + 1);
              Api.Semaphore.release d)
        done;
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d;
        if Api.Shared.get x <> 2 then failwith "lost update")
      1;
    bug_preemptions "bluetooth in OCaml: one preemption" (fun () ->
        (* transliteration of the Bluetooth model against the shim API *)
        let pending_io = Api.Shared.make 1 in
        let stopping = Api.Shared.make false in
        let stopped = Api.Shared.make false in
        let stop_ev = Api.Event.create ~manual:true () in
        let release_ref () =
          if Api.Shared.fetch_add pending_io (-1) = 1 then
            Api.Event.set stop_ev
        in
        Api.spawn (fun () ->
            if not (Api.Shared.get stopping) then begin
              ignore (Api.Shared.fetch_add pending_io 1);
              if Api.Shared.get stopped then
                failwith "I/O processed after the driver stopped";
              release_ref ()
            end);
        Api.spawn (fun () ->
            Api.Shared.set stopping true;
            release_ref ();
            Api.Event.wait stop_ev;
            Api.Shared.set stopped true))
      1;
    clean "fixed bluetooth in OCaml" ~max_bound:4 (fun () ->
        let pending_io = Api.Shared.make 1 in
        let stopping = Api.Shared.make false in
        let stopped = Api.Shared.make false in
        let stop_ev = Api.Event.create ~manual:true () in
        let m = Api.Mutex.create () in
        let release_ref () =
          if Api.Shared.fetch_add pending_io (-1) = 1 then
            Api.Event.set stop_ev
        in
        Api.spawn (fun () ->
            let added =
              Api.Mutex.with_lock m (fun () ->
                  if not (Api.Shared.get stopping) then begin
                    ignore (Api.Shared.fetch_add pending_io 1);
                    true
                  end
                  else false)
            in
            if added then begin
              if Api.Shared.get stopped then
                failwith "I/O processed after the driver stopped";
              release_ref ()
            end);
        Api.spawn (fun () ->
            Api.Mutex.with_lock m (fun () -> Api.Shared.set stopping true);
            release_ref ();
            Api.Event.wait stop_ev;
            Api.Shared.set stopped true));
    bug_preemptions "deadlock through lock ordering" (fun () ->
        let a = Api.Mutex.create () in
        let b = Api.Mutex.create () in
        let d = Api.Semaphore.create 0 in
        Api.spawn (fun () ->
            Api.Mutex.lock a;
            Api.Mutex.lock b;
            Api.Mutex.unlock b;
            Api.Mutex.unlock a;
            Api.Semaphore.release d);
        Api.spawn (fun () ->
            Api.Mutex.lock b;
            Api.Mutex.lock a;
            Api.Mutex.unlock a;
            Api.Mutex.unlock b;
            Api.Semaphore.release d);
        Api.Semaphore.acquire d;
        Api.Semaphore.acquire d)
      1;
    clean "yield is harmless" (fun () ->
        let d = Api.Semaphore.create 0 in
        Api.spawn (fun () ->
            Api.yield ();
            Api.Semaphore.release d);
        Api.yield ();
        Api.Semaphore.acquire d);
  ]

(* --- engine behaviour ------------------------------------------------------- *)

let engine_tests =
  [
    Alcotest.test_case "stateless exploration is complete and replays" `Quick
      (fun () ->
        let test () =
          let m = Api.Mutex.create () in
          let g = Api.Data.make 0 in
          let d = Api.Semaphore.create 0 in
          for _ = 1 to 2 do
            Api.spawn (fun () ->
                Api.Mutex.with_lock m (fun () ->
                    Api.Data.set g (Api.Data.get g + 1));
                Api.Semaphore.release d)
          done;
          Api.Semaphore.acquire d;
          Api.Semaphore.acquire d
        in
        let before = CE.replays () in
        let r =
          CE.run ~strategy:(Explore.Icb { max_bound = None; cache = false })
            test
        in
        check Alcotest.bool "complete" true r.Sresult.complete;
        check Alcotest.int "no bugs" 0 (List.length r.bugs);
        check Alcotest.bool "replays happened (stateless branching)" true
          (CE.replays () > before));
    Alcotest.test_case "exploration is reproducible" `Quick (fun () ->
        let test () =
          let x = Api.Shared.make 0 in
          let d = Api.Semaphore.create 0 in
          for i = 1 to 2 do
            Api.spawn (fun () ->
                Api.Shared.set x i;
                Api.Semaphore.release d)
          done;
          Api.Semaphore.acquire d;
          Api.Semaphore.acquire d
        in
        let run () =
          let r =
            CE.run ~strategy:(Explore.Icb { max_bound = None; cache = false })
              test
          in
          (r.Sresult.executions, r.distinct_states)
        in
        check
          (Alcotest.pair Alcotest.int Alcotest.int)
          "identical" (run ()) (run ()));
    Alcotest.test_case "thread bodies propagate exceptions as bugs" `Quick
      (fun () ->
        match CE.check (fun () -> Api.spawn (fun () -> invalid_arg "boom")) with
        | Some b ->
          check Alcotest.bool "mentions boom" true
            (String.length b.Sresult.msg > 0)
        | None -> Alcotest.fail "expected a bug");
    Alcotest.test_case "machine and chess agree on bluetooth's bound" `Quick
      (fun () ->
        (* the model-based and the real-code-based checker expose the same
           bug at the same minimal preemption count *)
        let model_bug =
          Icb.check (Icb_models.Bluetooth.program ~bug:true)
        in
        let code_bug =
          CE.check (fun () ->
              let pending_io = Api.Shared.make 1 in
              let stopping = Api.Shared.make false in
              let stopped = Api.Shared.make false in
              let stop_ev = Api.Event.create ~manual:true () in
              let release_ref () =
                if Api.Shared.fetch_add pending_io (-1) = 1 then
                  Api.Event.set stop_ev
              in
              Api.spawn (fun () ->
                  if not (Api.Shared.get stopping) then begin
                    ignore (Api.Shared.fetch_add pending_io 1);
                    if Api.Shared.get stopped then
                      failwith "I/O processed after the driver stopped";
                    release_ref ()
                  end);
              Api.spawn (fun () ->
                  Api.Shared.set stopping true;
                  release_ref ();
                  Api.Event.wait stop_ev;
                  Api.Shared.set stopped true))
        in
        match model_bug, code_bug with
        | Some a, Some b ->
          check Alcotest.int "same minimal bound" a.Sresult.preemptions
            b.Sresult.preemptions
        | _ -> Alcotest.fail "both checkers must find the bug");
  ]

(* --- the work-stealing queue, transliterated ------------------------------ *)

(* The paper's central benchmark in real OCaml against the shim API; the
   same THE protocol as the zlang model in Icb_models.Workstealing, so the
   two checkers can be cross-validated on it. *)
let wsq_test ~pop_reads_head_first () =
  let head = Api.Shared.make 0 in
  let tail = Api.Shared.make 0 in
  let items = Array.make 2 (Api.Data.make 0) in
  for i = 0 to 1 do
    items.(i) <- Api.Data.make 0
  done;
  let taken = Array.init 3 (fun _ -> Api.Shared.make 0) in
  let consumed = Api.Shared.make 0 in
  let m = Api.Mutex.create () in
  let done_ = Api.Semaphore.create 0 in
  let consume got =
    if got >= 0 then begin
      if Api.Shared.fetch_add taken.(got) 1 <> 0 then
        failwith "item consumed twice";
      ignore (Api.Shared.fetch_add consumed 1)
    end
  in
  let push v =
    let t = Api.Shared.get tail in
    let h = Api.Shared.get head in
    if t - h >= 2 then failwith "push to a full queue";
    Api.Data.set items.(t mod 2) v;
    Api.Shared.set tail (t + 1)
  in
  let pop () =
    let t = Api.Shared.get tail - 1 in
    if pop_reads_head_first then begin
      (* the seeded bug: peek at the head before publishing the reserved
         tail, breaking the Dekker handshake on the last item *)
      let h = Api.Shared.get head in
      Api.Shared.set tail t;
      if t < h then begin
        Api.Shared.set tail (t + 1);
        Api.Mutex.with_lock m (fun () ->
            let h = Api.Shared.get head in
            let t = Api.Shared.get tail - 1 in
            if t >= h then begin
              let v = Api.Data.get items.(t mod 2) in
              Api.Shared.set tail t;
              v
            end
            else -1)
      end
      else Api.Data.get items.(t mod 2)
    end
    else begin
      Api.Shared.set tail t;
      let h = Api.Shared.get head in
      if t < h then begin
        Api.Shared.set tail (t + 1);
        Api.Mutex.with_lock m (fun () ->
            let h = Api.Shared.get head in
            let t = Api.Shared.get tail - 1 in
            if t >= h then begin
              let v = Api.Data.get items.(t mod 2) in
              Api.Shared.set tail t;
              v
            end
            else -1)
      end
      else Api.Data.get items.(t mod 2)
    end
  in
  let steal () =
    Api.Mutex.with_lock m (fun () ->
        let h = Api.Shared.get head in
        Api.Shared.set head (h + 1);
        let t = Api.Shared.get tail in
        if h < t then Api.Data.get items.(h mod 2)
        else begin
          Api.Shared.set head h;
          -1
        end)
  in
  Api.spawn (fun () ->
      push 0;
      push 1;
      consume (pop ());
      push 2;
      Api.Semaphore.release done_);
  Api.spawn (fun () ->
      for _ = 1 to 3 do
        consume (steal ())
      done;
      Api.Semaphore.release done_);
  Api.Semaphore.acquire done_;
  Api.Semaphore.acquire done_;
  let live = Api.Shared.get tail - Api.Shared.get head in
  if Api.Shared.get consumed + live <> 3 then failwith "items were lost"

let wsq_tests =
  [
    Alcotest.test_case "correct THE protocol verified to bound 2" `Slow
      (fun () ->
        match CE.check ~max_bound:2 (wsq_test ~pop_reads_head_first:false) with
        | Some b -> Alcotest.failf "unexpected bug: %s" b.Sresult.msg
        | None -> ());
    Alcotest.test_case
      "pop-reads-head-first found at the model's bound (cross-validation)"
      `Quick (fun () ->
        (* the zlang model finds this mutation at exactly 1 preemption;
           the real-code checker must agree *)
        match CE.check ~max_bound:1 (wsq_test ~pop_reads_head_first:true) with
        | Some b ->
          check Alcotest.int "same minimal bound as the model" 1
            b.Sresult.preemptions
        | None -> Alcotest.fail "expected the handshake bug at bound 1");
  ]

let () =
  Alcotest.run "chess"
    [
      ("primitives", primitive_tests);
      ("finding", finding_tests);
      ("engine", engine_tests);
      ("wsq", wsq_tests);
    ]
