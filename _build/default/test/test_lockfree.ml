(* Verifying the lock-free structures with the stateless checker: the
   "downstream user" workflow — write the structure against the shim API,
   state its contract as assertions in a driver, explore schedules. *)

module Api = Icb_chess.Api
module CE = Icb_chess.Chess_engine
module Explore = Icb_search.Explore
module Collector = Icb_search.Collector
module Treiber = Icb_lockfree.Treiber
module Msqueue = Icb_lockfree.Msqueue

let check = Alcotest.check

let explore ?(bound = 2) ?(cap = 100_000) test =
  CE.run
    ~options:
      {
        Collector.default_options with
        max_executions = Some cap;
        stop_at_first_bug = true;
      }
    ~strategy:(Explore.Icb { max_bound = Some bound; cache = false })
    test

(* --- Treiber stack --------------------------------------------------------- *)

(* Two pushers and one popper; at the end, every pushed value must be
   accounted for exactly once (popped or still on the stack). *)
let stack_driver ~push () =
  let s = Treiber.create () in
  let popped = Api.Data.make [] in
  let d = Api.Semaphore.create 0 in
  Api.spawn (fun () ->
      push s 1;
      Api.Semaphore.release d);
  Api.spawn (fun () ->
      push s 2;
      Api.Semaphore.release d);
  Api.spawn (fun () ->
      (match Treiber.pop s with
      | Some v -> Api.Data.set popped (v :: Api.Data.get popped)
      | None -> ());
      Api.Semaphore.release d);
  for _ = 1 to 3 do
    Api.Semaphore.acquire d
  done;
  let rec drain acc =
    match Treiber.pop s with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let all = drain (Api.Data.get popped) in
  let sorted = List.sort compare all in
  if sorted <> [ 1; 2 ] then
    failwith
      (Printf.sprintf "stack lost or duplicated values: [%s]"
         (String.concat "; " (List.map string_of_int sorted)))

let treiber_tests =
  [
    Alcotest.test_case "Treiber stack verified to bound 2" `Slow (fun () ->
        let r = explore (stack_driver ~push:Treiber.push) in
        check Alcotest.int "no bugs" 0 (List.length r.Icb_search.Sresult.bugs));
    Alcotest.test_case "broken push loses a value" `Quick (fun () ->
        let r = explore (stack_driver ~push:Treiber.Broken.push) in
        (match r.Icb_search.Sresult.bugs with
        | bug :: _ ->
          check Alcotest.bool "needs at least one preemption" true
            (bug.preemptions >= 1)
        | [] -> Alcotest.fail "expected the lost push"));
    Alcotest.test_case "stack is LIFO for a single thread" `Quick (fun () ->
        let r =
          explore (fun () ->
              let s = Treiber.create () in
              Treiber.push s 1;
              Treiber.push s 2;
              Treiber.push s 3;
              if Treiber.pop s <> Some 3 then failwith "not LIFO";
              if Treiber.pop s <> Some 2 then failwith "not LIFO";
              if Treiber.pop s <> Some 1 then failwith "not LIFO";
              if Treiber.pop s <> None then failwith "ghost element")
        in
        check Alcotest.int "no bugs" 0 (List.length r.Icb_search.Sresult.bugs));
  ]

(* --- Michael-Scott queue --------------------------------------------------- *)

(* Two enqueuers and one dequeuer; at the end every enqueued value is
   delivered exactly once, and per-producer order is preserved. *)
let queue_driver ~enqueue () =
  let q = Msqueue.create () in
  let got = Api.Data.make [] in
  let d = Api.Semaphore.create 0 in
  Api.spawn (fun () ->
      enqueue q 1;
      Api.Semaphore.release d);
  Api.spawn (fun () ->
      enqueue q 2;
      Api.Semaphore.release d);
  Api.spawn (fun () ->
      (match Msqueue.dequeue q with
      | Some v -> Api.Data.set got (v :: Api.Data.get got)
      | None -> ());
      Api.Semaphore.release d);
  for _ = 1 to 3 do
    Api.Semaphore.acquire d
  done;
  let rec drain acc =
    match Msqueue.dequeue q with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let all = drain (Api.Data.get got) in
  let sorted = List.sort compare all in
  if sorted <> [ 1; 2 ] then
    failwith
      (Printf.sprintf "queue lost or duplicated values: [%s]"
         (String.concat "; " (List.map string_of_int sorted)))

let msqueue_tests =
  [
    Alcotest.test_case "MS queue verified to bound 2" `Slow (fun () ->
        let r = explore (queue_driver ~enqueue:Msqueue.enqueue) in
        check Alcotest.int "no bugs" 0 (List.length r.Icb_search.Sresult.bugs));
    Alcotest.test_case "broken enqueue loses a message" `Quick (fun () ->
        let r = explore (queue_driver ~enqueue:Msqueue.Broken.enqueue) in
        check Alcotest.bool "bug found" true (r.Icb_search.Sresult.bugs <> []));
    Alcotest.test_case "queue is FIFO per producer" `Quick (fun () ->
        let r =
          explore (fun () ->
              let q = Msqueue.create () in
              let d = Api.Semaphore.create 0 in
              Api.spawn (fun () ->
                  Msqueue.enqueue q 10;
                  Msqueue.enqueue q 11;
                  Api.Semaphore.release d);
              Api.Semaphore.acquire d;
              (* producer finished: its two messages must come out in order *)
              let a = Msqueue.dequeue q in
              let b = Msqueue.dequeue q in
              if not (a = Some 10 && b = Some 11) then
                failwith "per-producer order broken")
        in
        check Alcotest.int "no bugs" 0 (List.length r.Icb_search.Sresult.bugs));
    Alcotest.test_case "dequeue on empty is None under contention" `Quick
      (fun () ->
        let r =
          explore (fun () ->
              let q = Msqueue.create () in
              let d = Api.Semaphore.create 0 in
              Api.spawn (fun () ->
                  ignore (Msqueue.dequeue q);
                  Api.Semaphore.release d);
              Api.spawn (fun () ->
                  ignore (Msqueue.dequeue q);
                  Api.Semaphore.release d);
              Api.Semaphore.acquire d;
              Api.Semaphore.acquire d)
        in
        check Alcotest.int "no bugs" 0 (List.length r.Icb_search.Sresult.bugs));
  ]

let () =
  Alcotest.run "lockfree"
    [ ("treiber", treiber_tests); ("msqueue", msqueue_tests) ]
