test/test_race.ml: Alcotest Icb Icb_machine Icb_race Icb_search List QCheck QCheck_alcotest Result String
