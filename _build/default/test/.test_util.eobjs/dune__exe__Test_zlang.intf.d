test/test_zlang.mli:
