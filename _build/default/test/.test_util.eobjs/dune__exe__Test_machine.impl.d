test/test_machine.ml: Alcotest Format Icb Icb_machine Icb_models Instr List Printf Prog Result String
