test/test_chess.ml: Alcotest Array Icb Icb_chess Icb_models Icb_search List String
