test/test_util.ml: Alcotest Icb_util List QCheck QCheck_alcotest Stdlib
