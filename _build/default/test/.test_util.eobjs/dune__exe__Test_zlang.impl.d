test/test_zlang.ml: Alcotest Array Format Icb Icb_machine Icb_models Icb_search Icb_zlang List Option Printexc Printf QCheck QCheck_alcotest Result String
