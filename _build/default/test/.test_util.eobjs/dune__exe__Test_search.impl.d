test/test_search.ml: Alcotest Array Hashtbl Icb Icb_models Icb_search Icb_util List Option Printf
