test/test_lockfree.ml: Alcotest Icb_chess Icb_lockfree Icb_search List Printf String
