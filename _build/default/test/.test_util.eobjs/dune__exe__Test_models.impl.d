test/test_models.ml: Alcotest Array Icb Icb_models Icb_search List Printf
