test/test_chess.mli:
