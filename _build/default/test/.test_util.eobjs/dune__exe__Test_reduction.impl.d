test/test_reduction.ml: Alcotest Format Hashtbl Icb Icb_machine Icb_search List Printf QCheck QCheck_alcotest String
