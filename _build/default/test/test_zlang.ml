module Ast = Icb_zlang.Ast
module Lexer = Icb_zlang.Lexer
module Parser = Icb_zlang.Parser
module Pretty = Icb_zlang.Pretty
module Token = Icb_zlang.Token
module Zl = Icb_zlang.Zl

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- lexer ---------------------------------------------------------------- *)

let tokens src = List.map fst (Lexer.tokenize src)

let token_testable =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (Token.to_string t))
    ( = )

let lexer_tests =
  [
    Alcotest.test_case "keywords vs identifiers" `Quick (fun () ->
        check (Alcotest.list token_testable) "mix"
          [ Token.KW_var; Token.IDENT "varx"; Token.COLON; Token.KW_int;
            Token.EOF ]
          (tokens "var varx: int"));
    Alcotest.test_case "operators, including two-char" `Quick (fun () ->
        check (Alcotest.list token_testable) "ops"
          [ Token.LT; Token.LE; Token.EQ; Token.ASSIGN; Token.NE; Token.BANG;
            Token.ANDAND; Token.OROR; Token.EOF ]
          (tokens "< <= == = != ! && ||"));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        check (Alcotest.list token_testable) "comments"
          [ Token.INT 1; Token.INT 2; Token.EOF ]
          (tokens "1 // line\n/* block\n over lines */ 2"));
    Alcotest.test_case "string escapes" `Quick (fun () ->
        check (Alcotest.list token_testable) "string"
          [ Token.STRING "a\"b\n"; Token.EOF ]
          (tokens {|"a\"b\n"|}));
    Alcotest.test_case "positions advance over newlines" `Quick (fun () ->
        match Lexer.tokenize "x\n  y" with
        | [ (_, p1); (_, p2); _ ] ->
          check Alcotest.int "line 1" 1 p1.Lexer.line;
          check Alcotest.int "line 2" 2 p2.Lexer.line;
          check Alcotest.int "col 3" 3 p2.Lexer.col
        | _ -> Alcotest.fail "unexpected token count");
    Alcotest.test_case "unterminated comment" `Quick (fun () ->
        match Lexer.tokenize "/* never closed" with
        | exception Lexer.Error (_, msg) ->
          check Alcotest.string "msg" "unterminated comment" msg
        | _ -> Alcotest.fail "expected a lexer error");
    Alcotest.test_case "unterminated string" `Quick (fun () ->
        match Lexer.tokenize {|"abc|} with
        | exception Lexer.Error (_, _) -> ()
        | _ -> Alcotest.fail "expected a lexer error");
    Alcotest.test_case "stray character" `Quick (fun () ->
        match Lexer.tokenize "a $ b" with
        | exception Lexer.Error (_, _) -> ()
        | _ -> Alcotest.fail "expected a lexer error");
  ]

(* --- parser ---------------------------------------------------------------- *)

let parse_expr_str s = Pretty.expr_to_string (Parser.parse_expr s)

let parser_tests =
  [
    Alcotest.test_case "precedence" `Quick (fun () ->
        check Alcotest.string "mul binds tighter" "1 + 2 * 3"
          (parse_expr_str "1 + 2 * 3");
        check Alcotest.string "parens preserved where needed" "(1 + 2) * 3"
          (parse_expr_str "(1 + 2) * 3");
        check Alcotest.string "comparison vs bool" "a < b && c < d"
          (parse_expr_str "a < b && c < d");
        check Alcotest.string "or loosest" "a && b || c && d"
          (parse_expr_str "(a && b) || (c && d)"));
    Alcotest.test_case "left associativity" `Quick (fun () ->
        check Alcotest.string "sub chains left" "1 - 2 - 3"
          (parse_expr_str "1 - 2 - 3");
        check Alcotest.string "explicit right needs parens" "1 - (2 - 3)"
          (parse_expr_str "1 - (2 - 3)"));
    Alcotest.test_case "unary operators" `Quick (fun () ->
        check Alcotest.string "neg" "-x + 1" (parse_expr_str "-x + 1");
        check Alcotest.string "not" "!a && b" (parse_expr_str "!a && b"));
    Alcotest.test_case "else-if chains" `Quick (fun () ->
        let p =
          Zl.parse_source
            {|
main {
  var x: int;
  if (x == 1) { x = 2; } else if (x == 2) { x = 3; } else { x = 4; }
}
|}
        in
        match p.Ast.procs with
        | [ { p_body = [ _; { s = Ast.Sif (_, _, [ { s = Ast.Sif (_, _, e); _ } ]); _ } ]; _ } ]
          -> check Alcotest.int "final else" 1 (List.length e)
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "syntax errors carry positions" `Quick (fun () ->
        match Zl.parse_source "main { var ; }" with
        | exception Zl.Error msg ->
          check Alcotest.bool "mentions line" true
            (String.length msg > 0
            && String.sub msg 0 4 = "line")
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "cas must assign to a variable" `Quick (fun () ->
        match Zl.parse_source
                {|
volatile var v: int;
var a[2]: int;
main { a[0] = cas(v, 0, 1); }
|}
        with
        | exception Zl.Error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
  ]

(* --- typechecker ------------------------------------------------------------ *)

let expect_type_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Zl.compile_source src with
      | exception Zl.Error msg ->
        check Alcotest.bool "is a type error" true
          (let has_sub needle hay =
             let nl = String.length needle and hl = String.length hay in
             let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
             go 0
           in
           has_sub "type error" msg)
      | _ -> Alcotest.fail "expected a type error")

let typecheck_tests =
  [
    expect_type_error "unknown variable" "main { x = 1; }";
    expect_type_error "type mismatch in assignment"
      "var g: int; main { g = true; }";
    expect_type_error "condition must be bool" "main { if (1) { skip; } }";
    expect_type_error "arith needs ints" "main { var b: bool; var x: int = b + 1; }";
    expect_type_error "comparing different types"
      "main { var b: bool; var x: int; var r: bool = b == x; }";
    expect_type_error "cas on non-volatile global"
      "var g: int; main { var r: int; r = cas(g, 0, 1); }";
    expect_type_error "lock of an event" "event e; main { lock(e); }";
    expect_type_error "wait on a mutex" "mutex m; main { wait(m); }";
    expect_type_error "acquire of a mutex" "mutex m; main { acquire(m); }";
    expect_type_error "break outside loop" "main { break; }";
    expect_type_error "continue outside loop" "main { continue; }";
    expect_type_error "duplicate global" "var g: int; var g: bool; main { }";
    expect_type_error "sync object and global share the namespace"
      "var m: int; mutex m; main { }";
    expect_type_error "shadowing rejected"
      "main { var x: int; if (x == 0) { var x: int; } }";
    expect_type_error "spawn arity" "proc w(a: int) { } main { spawn w(); }";
    expect_type_error "spawn argument type"
      "proc w(a: int) { } main { spawn w(true); }";
    Alcotest.test_case "spawning main is rejected" `Quick (fun () ->
        (* `main` is a keyword, so this dies in the parser; the type
           checker also guards against it for hand-built ASTs *)
        match Zl.compile_source "main { spawn main(); }" with
        | exception Zl.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    expect_type_error "indexing a scalar" "var g: int; main { g[0] = 1; }";
    expect_type_error "array must be indexed" "var a[2]: int; main { a = 1; }";
    expect_type_error "scalar sync indexed" "mutex m; main { lock(m[0]); }";
    expect_type_error "array sync unindexed" "mutex m[2]; main { lock(m); }";
    expect_type_error "free of a non-handle" "main { var x: int; free(x); }";
    expect_type_error "heap cells hold ints"
      "main { var h: handle; h = alloc(1); h[0] = true; }";
    expect_type_error "assert needs bool" "main { assert(1); }";
    expect_type_error "non-constant global initializer"
      "var a: int = 1; var b: int = a; main { }";
    expect_type_error "negative semaphore" "sem s = 0 - 1; main { }";
    expect_type_error "initializer uses the variable being declared"
      "main { var x: int = x; }";
    Alcotest.test_case "missing main" `Quick (fun () ->
        match Zl.compile_source "proc w() { }" with
        | exception Zl.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "volatile arrays and sync arrays accepted" `Quick
      (fun () ->
        let prog =
          Zl.compile_source
            {|
volatile var v[3]: int;
mutex locks[2];
event evs[2];
sem sems[2] = 1;
main {
  var r: int;
  r = cas(v[1], 0, 5);
  r = fetch_add(v[2], 1);
  lock(locks[0]); unlock(locks[0]);
  signal(evs[1]); wait(evs[1]);
  acquire(sems[0]); release(sems[0]);
}
|}
        in
        Alcotest.(check (result unit string))
          "validates" (Ok ())
          (Icb_machine.Prog.validate prog));
  ]

(* --- pretty-printer round trip ------------------------------------------------ *)

(* Random well-formed programs over a fixed environment of names. *)
module Gen = struct
  open QCheck.Gen

  let ident_pool = [| "x"; "y"; "z"; "g"; "arr"; "flag" |]

  (* expressions over int locals x, y and int global g, int array arr,
     bool local/global flag handled by type parameter *)
  let rec int_expr n st =
    if n <= 0 then
      (oneof
         [
           map (fun i -> Ast.{ e = Eint i; epos = Ast.dummy_pos }) (int_range 0 99);
           oneofl
             [
               Ast.{ e = Evar "x"; epos = Ast.dummy_pos };
               Ast.{ e = Evar "y"; epos = Ast.dummy_pos };
               Ast.{ e = Evar "g"; epos = Ast.dummy_pos };
             ];
         ])
        st
    else
      (frequency
         [
           (2, int_expr 0);
           ( 3,
             map2
               (fun op (a, b) ->
                 Ast.{ e = Ebinop (op, a, b); epos = Ast.dummy_pos })
               (oneofl [ Ast.Badd; Ast.Bsub; Ast.Bmul; Ast.Bdiv; Ast.Bmod ])
               (pair (int_expr (n / 2)) (int_expr (n / 2))) );
           ( 1,
             map
               (fun a -> Ast.{ e = Eunop (Ast.Uneg, a); epos = Ast.dummy_pos })
               (int_expr (n - 1)) );
           ( 1,
             map
               (fun i -> Ast.{ e = Eindex ("arr", i); epos = Ast.dummy_pos })
               (int_expr (n - 1)) );
         ])
        st

  let rec bool_expr n st =
    if n <= 0 then
      (oneofl
         [
           Ast.{ e = Ebool true; epos = Ast.dummy_pos };
           Ast.{ e = Ebool false; epos = Ast.dummy_pos };
           Ast.{ e = Evar "flag"; epos = Ast.dummy_pos };
         ])
        st
    else
      (frequency
         [
           (1, bool_expr 0);
           ( 2,
             map2
               (fun op (a, b) ->
                 Ast.{ e = Ebinop (op, a, b); epos = Ast.dummy_pos })
               (oneofl [ Ast.Blt; Ast.Ble; Ast.Bgt; Ast.Bge; Ast.Beq; Ast.Bne ])
               (pair (int_expr (n / 2)) (int_expr (n / 2))) );
           ( 2,
             map2
               (fun op (a, b) ->
                 Ast.{ e = Ebinop (op, a, b); epos = Ast.dummy_pos })
               (oneofl [ Ast.Band; Ast.Bor ])
               (pair (bool_expr (n / 2)) (bool_expr (n / 2))) );
           ( 1,
             map
               (fun a -> Ast.{ e = Eunop (Ast.Unot, a); epos = Ast.dummy_pos })
               (bool_expr (n - 1)) );
         ])
        st

  let rec stmt ~in_atomic n st =
    let mk s = Ast.{ s; spos = Ast.dummy_pos } in
    if n <= 0 then
      (oneof
         ([
            map (fun e -> mk (Ast.Sassign (Ast.Lvar "x", e))) (int_expr 2);
            map (fun e -> mk (Ast.Sassign (Ast.Lvar "g", e))) (int_expr 2);
            map2
              (fun i e -> mk (Ast.Sassign (Ast.Lindex ("arr", i), e)))
              (int_expr 1) (int_expr 1);
            return (mk Ast.Sskip);
            map (fun e -> mk (Ast.Sassert (e, "prop"))) (bool_expr 2);
            return
              (mk
                 (Ast.Ssync
                    (Ast.Olock, { oname = "m"; oindex = None; opos = Ast.dummy_pos })));
            return
              (mk
                 (Ast.Ssync
                    ( Ast.Ounlock,
                      { oname = "m"; oindex = None; opos = Ast.dummy_pos } )));
          ]
         @ if in_atomic then [] else [ return (mk Ast.Syield) ]))
        st
    else
      (frequency
         [
           (4, stmt ~in_atomic 0);
           ( 1,
             map2
               (fun c (t, e) -> mk (Ast.Sif (c, t, e)))
               (bool_expr 2)
               (pair (block ~in_atomic (n - 1)) (block ~in_atomic (n - 1))) );
           ( 1,
             map2
               (fun c b -> mk (Ast.Swhile (c, b)))
               (bool_expr 2)
               (block ~in_atomic (n - 1)) );
           (1, map (fun b -> mk (Ast.Satomic b)) (block ~in_atomic:true (n - 1)));
         ])
        st

  and block ~in_atomic n =
    QCheck.Gen.list_size (QCheck.Gen.int_range 0 3) (stmt ~in_atomic n)

  let program =
    QCheck.Gen.map
      (fun body ->
        {
          Ast.globals =
            [
              {
                Ast.g_name = "g";
                g_type = Ast.Tint;
                g_size = None;
                g_init = Some Ast.{ e = Eint 0; epos = dummy_pos };
                g_volatile = false;
                g_pos = Ast.dummy_pos;
              };
              {
                Ast.g_name = "arr";
                g_type = Ast.Tint;
                g_size = Some Ast.{ e = Eint 4; epos = dummy_pos };
                g_init = None;
                g_volatile = true;
                g_pos = Ast.dummy_pos;
              };
            ];
          syncs =
            [
              {
                Ast.s_name = "m";
                s_kind = Ast.Dmutex;
                s_size = None;
                s_pos = Ast.dummy_pos;
              };
            ];
          procs =
            [
              {
                Ast.p_name = "main";
                p_params = [];
                p_body =
                  Ast.
                    [
                      { s = Sdecl { name = "x"; typ = Tint; init = None }; spos = dummy_pos };
                      { s = Sdecl { name = "y"; typ = Tint; init = Some { e = Eint 1; epos = dummy_pos } }; spos = dummy_pos };
                      { s = Sdecl { name = "flag"; typ = Tbool; init = None }; spos = dummy_pos };
                    ]
                  @ body;
              p_pos = Ast.dummy_pos;
              };
            ];
        })
      (block ~in_atomic:false 3)

  let _ = ident_pool
end

(* Structural equality ignoring positions. *)
let rec strip_expr (e : Ast.expr) : Ast.expr =
  let e' =
    match e.e with
    | Ast.Eint _ | Ast.Ebool _ | Ast.Enull | Ast.Evar _ -> e.e
    | Ast.Eindex (n, i) -> Ast.Eindex (n, strip_expr i)
    | Ast.Eunop (op, a) -> Ast.Eunop (op, strip_expr a)
    | Ast.Ebinop (op, a, b) -> Ast.Ebinop (op, strip_expr a, strip_expr b)
  in
  { Ast.e = e'; epos = Ast.dummy_pos }

let rec strip_stmt (st : Ast.stmt) : Ast.stmt =
  let s =
    match st.s with
    | Ast.Sdecl { name; typ; init } ->
      Ast.Sdecl { name; typ; init = Option.map strip_expr init }
    | Ast.Sassign (Ast.Lvar n, e) -> Ast.Sassign (Ast.Lvar n, strip_expr e)
    | Ast.Sassign (Ast.Lindex (n, i), e) ->
      Ast.Sassign (Ast.Lindex (n, strip_expr i), strip_expr e)
    | Ast.Scas { dst; glob; expect; update } ->
      Ast.Scas
        {
          dst;
          glob = { glob with tindex = Option.map strip_expr glob.tindex; tpos = Ast.dummy_pos };
          expect = strip_expr expect;
          update = strip_expr update;
        }
    | Ast.Sfetch_add { dst; glob; delta } ->
      Ast.Sfetch_add
        {
          dst;
          glob = { glob with tindex = Option.map strip_expr glob.tindex; tpos = Ast.dummy_pos };
          delta = strip_expr delta;
        }
    | Ast.Salloc { dst; size } -> Ast.Salloc { dst; size = strip_expr size }
    | Ast.Sfree n -> Ast.Sfree n
    | Ast.Ssync (op, o) ->
      Ast.Ssync
        (op, { o with oindex = Option.map strip_expr o.oindex; opos = Ast.dummy_pos })
    | Ast.Sspawn { proc; args } ->
      Ast.Sspawn { proc; args = List.map strip_expr args }
    | Ast.Syield | Ast.Sskip | Ast.Sbreak | Ast.Scontinue | Ast.Sreturn -> st.s
    | Ast.Sassert (e, m) -> Ast.Sassert (strip_expr e, m)
    | Ast.Sif (c, t, e) ->
      Ast.Sif (strip_expr c, List.map strip_stmt t, List.map strip_stmt e)
    | Ast.Swhile (c, b) -> Ast.Swhile (strip_expr c, List.map strip_stmt b)
    | Ast.Satomic b -> Ast.Satomic (List.map strip_stmt b)
  in
  { Ast.s; spos = Ast.dummy_pos }

let strip_program (p : Ast.program) : Ast.program =
  {
    Ast.globals =
      List.map
        (fun g ->
          {
            g with
            Ast.g_size = Option.map strip_expr g.Ast.g_size;
            g_init = Option.map strip_expr g.Ast.g_init;
            g_pos = Ast.dummy_pos;
          })
        p.globals;
    syncs =
      List.map
        (fun s ->
          {
            s with
            Ast.s_size = Option.map strip_expr s.Ast.s_size;
            s_kind =
              (match s.Ast.s_kind with
              | Ast.Dsem e -> Ast.Dsem (Option.map strip_expr e)
              | k -> k);
            s_pos = Ast.dummy_pos;
          })
        p.syncs;
    procs =
      List.map
        (fun pr ->
          {
            pr with
            Ast.p_body = List.map strip_stmt pr.Ast.p_body;
            p_pos = Ast.dummy_pos;
          })
        p.procs;
  }

(* Constant expressions evaluated two ways: the type checker's constant
   folder versus compiling `g = <expr>` and running the machine — an
   end-to-end check of the expression compiler and the interpreter's
   arithmetic. *)
module Const_gen = struct
  open QCheck.Gen

  let rec expr n st =
    if n <= 0 then
      (map (fun i -> Ast.{ e = Eint i; epos = dummy_pos }) (int_range (-50) 50)) st
    else
      (frequency
         [
           (2, expr 0);
           ( 4,
             map2
               (fun op (a, b) ->
                 Ast.{ e = Ebinop (op, a, b); epos = dummy_pos })
               (oneofl [ Ast.Badd; Ast.Bsub; Ast.Bmul; Ast.Bdiv; Ast.Bmod ])
               (pair (expr (n / 2)) (expr (n / 2))) );
           ( 1,
             map
               (fun a -> Ast.{ e = Eunop (Ast.Uneg, a); epos = dummy_pos })
               (expr (n - 1)) );
         ])
        st
end

let const_vs_compiled =
  qtest
    (QCheck.Test.make ~name:"constant folding agrees with compiled execution"
       ~count:300
       (QCheck.make ~print:Pretty.expr_to_string (Const_gen.expr 4))
       (fun e ->
         let text = Pretty.expr_to_string e in
         match Icb_zlang.Typecheck.(check (Parser.parse (Printf.sprintf "var probe: int = %s; main { }" text))) with
         | exception Icb_zlang.Typecheck.Error (_, msg) ->
           (* division by zero inside the constant: the runtime must agree
              that the expression is divergent *)
           let has_sub needle hay =
             let nl = String.length needle and hl = String.length hay in
             let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
             go 0
           in
           if not (has_sub "constant" msg) then
             QCheck.Test.fail_reportf "unexpected type error %s on %s" msg text
           else begin
             (* run it dynamically: must hit a division-by-zero error *)
             let prog =
               Icb.compile (Printf.sprintf "var g: int;
main { g = %s; }" text)
             in
             let module E = (val Icb.engine ~config:Icb_search.Mach_engine.zing_config prog) in
             let rec run st =
               match E.status st with
               | Icb_search.Engine.Running -> run (E.step st 0)
               | s -> s
             in
             match run (E.initial ()) with
             | Icb_search.Engine.Failed { key; _ } -> key = "div-by-zero"
             | _ -> false
           end
         | tast ->
           let folded =
             match (tast.Icb_zlang.Tast.tglobals.(0)).Icb_machine.Prog.ginit with
             | Icb_machine.Value.Int n -> n
             | _ -> QCheck.Test.fail_report "non-int constant"
           in
           let prog =
             Icb.compile (Printf.sprintf "var g: int;
main { g = %s; }" text)
           in
           let module E = (val Icb.engine ~config:Icb_search.Mach_engine.zing_config prog) in
           let rec run st =
             match E.status st with
             | Icb_search.Engine.Running -> run (E.step st 0)
             | _ -> st
           in
           let final = Icb_search.Mach_engine.machine_state (run (E.initial ())) in
           Icb_machine.Value.as_int
             (Icb_machine.State.global_get final ~gid:0 ~idx:0)
           = folded))

let roundtrip_tests =
  [
    qtest
      (QCheck.Test.make ~name:"parse (pretty p) = p" ~count:300
         (QCheck.make ~print:Pretty.program_to_string Gen.program)
         (fun p ->
           let printed = Pretty.program_to_string p in
           let reparsed =
             try Parser.parse printed
             with e ->
               QCheck.Test.fail_reportf "reparse failed: %s@.%s"
                 (Printexc.to_string e) printed
           in
           strip_program reparsed = strip_program p));
    qtest
      (QCheck.Test.make ~name:"generated programs typecheck and compile"
         ~count:150
         (QCheck.make ~print:Pretty.program_to_string Gen.program)
         (fun p ->
           let prog =
             Icb_zlang.Compile.program (Icb_zlang.Typecheck.check p)
           in
           Result.is_ok (Icb_machine.Prog.validate prog)));
    const_vs_compiled;
    Alcotest.test_case "all model sources round-trip" `Quick (fun () ->
        List.iter
          (fun (e : Icb_models.Registry.entry) ->
            match e.correct_source with
            | Some src ->
              let p = Zl.parse_source src in
              let printed = Pretty.program_to_string p in
              let p2 = Zl.parse_source printed in
              Alcotest.(check bool)
                (e.model_name ^ " round-trips") true
                (strip_program p = strip_program p2)
            | None -> ())
          Icb_models.Registry.all);
  ]

let () =
  Alcotest.run "zlang"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("typecheck", typecheck_tests);
      ("roundtrip", roundtrip_tests);
    ]
