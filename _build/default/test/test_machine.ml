(* Machine semantics, exercised through small modeling-language programs
   executed under controlled schedules. *)

module Interp = Icb_machine.Interp
module State = Icb_machine.State
module Merr = Icb_machine.Merr
module Value = Icb_machine.Value

let check = Alcotest.check

let compile = Icb.compile

(* Drive a program with an explicit schedule; return the final state. *)
let run_schedule ?(gran = Interp.Every_access) prog schedule =
  let r = Interp.start gran prog in
  List.fold_left
    (fun st tid -> (Interp.step gran st tid).Interp.state)
    r.Interp.state schedule

(* Run to completion scheduling the lowest enabled thread first. *)
let run_round_robin ?(gran = Interp.Every_access) ?(max_steps = 10_000) prog =
  let r = Interp.start gran prog in
  let st = ref r.Interp.state in
  let steps = ref 0 in
  let rec go () =
    match Interp.enabled !st with
    | [] -> ()
    | t :: _ ->
      incr steps;
      if !steps > max_steps then failwith "test: did not terminate";
      st := (Interp.step gran !st t).Interp.state;
      go ()
  in
  go ();
  !st

let status_testable =
  Alcotest.testable
    (fun fmt -> function
      | Interp.Running -> Format.fprintf fmt "running"
      | Interp.Terminated -> Format.fprintf fmt "terminated"
      | Interp.Deadlock l ->
        Format.fprintf fmt "deadlock %s"
          (String.concat "," (List.map string_of_int l))
      | Interp.Error e -> Format.fprintf fmt "error: %a" Merr.pp e)
    (fun a b ->
      match a, b with
      | Interp.Running, Interp.Running | Interp.Terminated, Interp.Terminated ->
        true
      | Interp.Deadlock x, Interp.Deadlock y -> x = y
      | Interp.Error x, Interp.Error y -> Merr.key x = Merr.key y
      | _ -> false)

let global_int st name =
  let gid = Icb_machine.Prog.find_global st.State.prog name in
  Value.as_int (State.global_get st ~gid ~idx:0)

(* --- arithmetic and locals ----------------------------------------------- *)

let arith_tests =
  [
    Alcotest.test_case "expressions evaluate" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var r1: int; var r2: int; var r3: bool; var r4: int;
main {
  var x: int = 7;
  var y: int = 3;
  r1 = x + y * 2;
  r2 = (x - y) / 2;
  r3 = x > y && !(x == y);
  r4 = x % y;
}
|})
        in
        check Alcotest.int "r1" 13 (global_int st "r1");
        check Alcotest.int "r2" 2 (global_int st "r2");
        check Alcotest.int "r4" 1 (global_int st "r4");
        check Alcotest.string "terminated" "terminated"
          (match Interp.status st with Interp.Terminated -> "terminated" | _ -> "no"));
    Alcotest.test_case "division by zero is a model error" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
var r: int;
main { var z: int = 0; r = 5 / z; }
|})
        in
        check status_testable "div0"
          (Interp.Error (Merr.Division_by_zero { tid = 0 }))
          (Interp.status st));
    Alcotest.test_case "short-circuit && skips shared reads" `Quick (fun () ->
        (* the right operand reads a global; with a false left operand the
           read must not happen, so the whole evaluation is one step *)
        let prog =
          compile
            {|
var g: int = 1;
var r: bool;
main { var f: bool = false; r = f && g == 1; g = 2; }
|}
        in
        let r = Interp.start Interp.Every_access prog in
        let r1 = Interp.step Interp.Every_access r.Interp.state 0 in
        (* first step: the Store to r (the g read was skipped) *)
        check Alcotest.int "one event" 1 (List.length r1.Interp.events));
    Alcotest.test_case "while loops and break/continue" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var r: int;
main {
  var i: int = 0;
  var acc: int = 0;
  while (true) {
    i = i + 1;
    if (i == 3) { continue; }
    if (i > 6) { break; }
    acc = acc + i;
  }
  r = acc;
}
|})
        in
        (* 1 + 2 + 4 + 5 + 6 = 18 *)
        check Alcotest.int "acc" 18 (global_int st "r"));
    Alcotest.test_case "local divergence detected" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
main { var x: int = 0; while (x == 0) { skip; } }
|})
        in
        check status_testable "divergence"
          (Interp.Error (Merr.Local_divergence { tid = 0 }))
          (Interp.status st));
  ]

(* --- synchronization ------------------------------------------------------ *)

let sync_tests =
  [
    Alcotest.test_case "mutex blocks and unblocks" `Quick (fun () ->
        let prog =
          compile
            {|
mutex m;
var r: int;
proc other() { lock(m); r = 2; unlock(m); }
main { lock(m); spawn other(); r = 1; unlock(m); }
|}
        in
        let r = Interp.start Interp.Every_access prog in
        let st = ref r.Interp.state in
        let step t = st := (Interp.step Interp.Every_access !st t).Interp.state in
        step 0 (* lock *);
        step 0 (* spawn *);
        check (Alcotest.list Alcotest.int) "thread 1 blocked" [ 0 ]
          (Interp.enabled !st);
        step 0 (* store *);
        step 0 (* unlock *);
        check (Alcotest.list Alcotest.int) "thread 1 released" [ 1 ]
          (Interp.enabled !st));
    Alcotest.test_case "unlock not held is an error" `Quick (fun () ->
        let st = run_round_robin (compile {|
mutex m;
main { unlock(m); }
|}) in
        check status_testable "unlock"
          (Interp.Error (Merr.Unlock_not_held { tid = 0; sync = "m" }))
          (Interp.status st));
    Alcotest.test_case "self-deadlock on double lock" `Quick (fun () ->
        let st =
          run_round_robin (compile {|
mutex m;
main { lock(m); lock(m); }
|})
        in
        check status_testable "deadlock" (Interp.Deadlock [ 0 ])
          (Interp.status st));
    Alcotest.test_case "auto-reset event consumes the signal" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
event e;
var r: int;
proc w() { wait(e); r = r + 1; }
main { spawn w(); spawn w(); signal(e); }
|})
        in
        (* one worker passes, the other deadlocks; round-robin runs main to
           completion first, then thread 1 consumes the signal *)
        check status_testable "one blocked" (Interp.Deadlock [ 2 ])
          (Interp.status st);
        check Alcotest.int "one increment" 1 (global_int st "r"));
    Alcotest.test_case "manual-reset event stays signaled" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
event manual e;
var r: int;
proc w() { wait(e); r = r + 1; }
main { spawn w(); spawn w(); signal(e); }
|})
        in
        check status_testable "all done" Interp.Terminated (Interp.status st);
        check Alcotest.int "both ran" 2 (global_int st "r"));
    Alcotest.test_case "initially signaled event" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
event manual signaled e;
var r: int;
main { wait(e); r = 1; }
|})
        in
        check Alcotest.int "passed" 1 (global_int st "r"));
    Alcotest.test_case "reset clears a manual event" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
event manual e;
proc w() { wait(e); }
main { signal(e); reset(e); spawn w(); }
|})
        in
        check status_testable "blocked" (Interp.Deadlock [ 1 ]) (Interp.status st));
    Alcotest.test_case "semaphore counts" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
sem s = 2;
var r: int;
proc w() { acquire(s); r = r + 1; }
main { spawn w(); spawn w(); spawn w(); }
|})
        in
        (* two acquires pass, the third blocks *)
        check status_testable "third blocked" (Interp.Deadlock [ 3 ])
          (Interp.status st);
        check Alcotest.int "two passed" 2 (global_int st "r"));
    Alcotest.test_case "cas and fetch_add" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
volatile var v: int = 5;
var r1: int; var r2: int; var r3: int; var after: int;
main {
  var t: int;
  t = cas(v, 5, 7);         // succeeds: old = 5
  r1 = t;
  t = cas(v, 5, 9);         // fails: old = 7
  r2 = t;
  t = fetch_add(v, 3);      // old = 7, v = 10
  r3 = t;
  after = v;
}
|})
        in
        check Alcotest.int "r1" 5 (global_int st "r1");
        check Alcotest.int "r2" 7 (global_int st "r2");
        check Alcotest.int "r3" 7 (global_int st "r3");
        check Alcotest.int "after" 10 (global_int st "after"));
    Alcotest.test_case "spawn passes arguments" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var r: int;
proc w(a: int, b: int) { r = a * 10 + b; }
main { spawn w(4, 2); }
|})
        in
        check Alcotest.int "args" 42 (global_int st "r"));
    Alcotest.test_case "yield defers to the other thread once" `Quick (fun () ->
        let prog =
          compile {|
var r: int;
proc w() { r = 2; }
main { spawn w(); yield; r = 1; }
|}
        in
        let r = Interp.start Interp.Every_access prog in
        let st = ref r.Interp.state in
        let step t = st := (Interp.step Interp.Every_access !st t).Interp.state in
        step 0 (* spawn *);
        step 0 (* yield executes; main now deprioritized *);
        check (Alcotest.list Alcotest.int) "only w schedulable" [ 1 ]
          (Interp.enabled !st));
  ]

(* --- atomic blocks --------------------------------------------------------- *)

let atomic_tests =
  [
    Alcotest.test_case "atomic protects a torn increment" `Quick (fun () ->
        let prog =
          compile
            {|
volatile var g: int;
event manual d1; event manual d2;
proc w(id: int) {
  atomic {
    var v: int = g;
    g = v + 1;
  }
  if (id == 0) { signal(d1); } else { signal(d2); }
}
main {
  spawn w(0); spawn w(1);
  wait(d1); wait(d2);
  var r: int = g;
  assert(r == 2, "lost update");
}
|}
        in
        check Alcotest.bool "verified" true (Icb.check prog ~max_bound:4 = None));
    Alcotest.test_case "the same code without atomic loses an update" `Quick
      (fun () ->
        let prog =
          compile
            {|
volatile var g: int;
event manual d1; event manual d2;
proc w(id: int) {
  var v: int = g;
  g = v + 1;
  if (id == 0) { signal(d1); } else { signal(d2); }
}
main {
  spawn w(0); spawn w(1);
  wait(d1); wait(d2);
  var r: int = g;
  assert(r == 2, "lost update");
}
|}
        in
        match Icb.check prog with
        | Some b -> check Alcotest.int "at one preemption" 1 b.preemptions
        | None -> Alcotest.fail "expected the lost update");
    Alcotest.test_case "blocking inside atomic releases atomicity" `Quick
      (fun () ->
        (* main holds the lock while spawning, so the worker must block
           inside its atomic section and resume later *)
        let prog =
          compile
            {|
volatile var g: int;
mutex m;
event manual d1;
proc w() {
  atomic {
    lock(m);
    g = g + 1;
    unlock(m);
  }
  signal(d1);
}
main {
  lock(m);
  spawn w();
  g = 10;
  unlock(m);
  wait(d1);
  var r: int = g;
  assert(r == 11, "atomic section ran before the unlock");
}
|}
        in
        check Alcotest.bool "verified" true (Icb.check prog ~max_bound:4 = None));
    Alcotest.test_case "whole atomic section is one step" `Quick (fun () ->
        let prog =
          compile
            {|
volatile var a: int; volatile var b: int; volatile var c: int;
main { atomic { a = 1; b = 2; c = 3; } }
|}
        in
        (* the atomic section has no scheduling point inside, so the whole
           body runs while parking the initial thread *)
        let r = Interp.start Interp.Sync_only prog in
        check Alcotest.int "three events in one stretch" 3
          (List.length r.Interp.events);
        check status_testable "done" Interp.Terminated
          (Interp.status r.Interp.state));
    Alcotest.test_case "yield inside atomic is rejected" `Quick (fun () ->
        match compile "main { atomic { yield; } }" with
        | exception Icb.Compile_error _ -> ()
        | _ -> Alcotest.fail "expected a type error");
    Alcotest.test_case "break escaping an atomic is rejected" `Quick (fun () ->
        match
          compile
            "main { var i: int; while (i < 3) { atomic { break; } } }"
        with
        | exception Icb.Compile_error _ -> ()
        | _ -> Alcotest.fail "expected a type error");
    Alcotest.test_case "loops and break inside atomic are fine" `Quick
      (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var g: int;
main {
  atomic {
    var i: int;
    while (true) {
      i = i + 1;
      if (i > 2) { break; }
    }
    g = i;
  }
}
|})
        in
        check Alcotest.int "loop result" 3 (global_int st "g"));
    Alcotest.test_case "nested atomics" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var g: int;
main { atomic { g = 1; atomic { g = g + 1; } g = g + 1; } }
|})
        in
        check Alcotest.int "nested" 3 (global_int st "g"));
  ]

(* --- heap ----------------------------------------------------------------- *)

let heap_tests =
  [
    Alcotest.test_case "alloc, store, load, free" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var r: int;
main {
  var h: handle;
  h = alloc(2);
  h[0] = 11;
  h[1] = 31;
  r = h[0] + h[1];
  free(h);
}
|})
        in
        check Alcotest.int "sum" 42 (global_int st "r");
        check status_testable "ok" Interp.Terminated (Interp.status st));
    Alcotest.test_case "use after free" `Quick (fun () ->
        let st =
          run_round_robin
            (compile
               {|
var r: int;
main { var h: handle; h = alloc(1); free(h); r = h[0]; }
|})
        in
        check status_testable "uaf"
          (Interp.Error (Merr.Use_after_free { tid = 0; addr = 0 }))
          (Interp.status st));
    Alcotest.test_case "double free" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
main { var h: handle; h = alloc(1); free(h); free(h); }
|})
        in
        check status_testable "df"
          (Interp.Error (Merr.Double_free { tid = 0; addr = 0 }))
          (Interp.status st));
    Alcotest.test_case "heap index out of bounds" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
main { var h: handle; h = alloc(2); h[2] = 1; }
|})
        in
        check status_testable "oob"
          (Interp.Error
             (Merr.Out_of_bounds { tid = 0; what = "&0"; idx = 2; size = 2 }))
          (Interp.status st));
    Alcotest.test_case "null handle dereference" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
var r: int;
main { var h: handle; r = h[0]; }
|})
        in
        check status_testable "invalid"
          (Interp.Error (Merr.Invalid_handle { tid = 0; addr = -1 }))
          (Interp.status st));
    Alcotest.test_case "array out of bounds" `Quick (fun () ->
        let st =
          run_round_robin
            (compile {|
var a[3]: int;
main { var i: int = 5; a[i] = 1; }
|})
        in
        check status_testable "oob"
          (Interp.Error
             (Merr.Out_of_bounds { tid = 0; what = "a"; idx = 5; size = 3 }))
          (Interp.status st));
  ]

(* --- canonical state fingerprints ----------------------------------------- *)

let signature_tests =
  [
    Alcotest.test_case "heap symmetry: allocation order is canonicalized"
      `Quick (fun () ->
        (* two programs allocate the same two objects in opposite orders and
           store the handles in swapped globals; the canonical form must
           coincide *)
        let p1 =
          compile
            {|
var a: handle; var b: handle;
main { var x: handle; var y: handle; x = alloc(1); y = alloc(2); a = x; b = y; }
|}
        in
        let p2 =
          compile
            {|
var a: handle; var b: handle;
main { var x: handle; var y: handle; y = alloc(2); x = alloc(1); a = x; b = y; }
|}
        in
        let s1 = run_round_robin p1 and s2 = run_round_robin p2 in
        check Alcotest.int64 "signatures equal" (State.signature s1)
          (State.signature s2));
    Alcotest.test_case "different values, different fingerprints" `Quick
      (fun () ->
        let make v =
          run_round_robin
            (compile (Printf.sprintf {|
var g: int;
main { g = %d; }
|} v))
        in
        check Alcotest.bool "differ" true
          (State.signature (make 1) <> State.signature (make 2)));
    Alcotest.test_case "same schedule is deterministic" `Quick (fun () ->
        let prog = Icb_models.Workstealing.program Icb_models.Workstealing.Correct in
        let s1 = run_schedule ~gran:Interp.Sync_only prog [ 0; 0; 1; 1; 2 ] in
        let s2 = run_schedule ~gran:Interp.Sync_only prog [ 0; 0; 1; 1; 2 ] in
        check Alcotest.string "canonical repr equal" (State.canonical_repr s1)
          (State.canonical_repr s2));
    Alcotest.test_case "every-access steps perform at most one shared access"
      `Quick (fun () ->
        let prog = Icb_models.Bluetooth.program ~bug:true in
        let r = Interp.start Interp.Every_access prog in
        let st = ref r.Interp.state in
        let ok = ref true in
        let rec go n =
          if n > 0 then
            match Interp.enabled !st with
            | [] -> ()
            | t :: _ ->
              let res = Interp.step Interp.Every_access !st t in
              let shared =
                List.length
                  (List.filter
                     (function
                       | Interp.Ev_fork _ | Interp.Ev_sync _
                       | Interp.Ev_data _ -> true
                       | Interp.Ev_lifetime _ -> false)
                     res.Interp.events)
              in
              if shared > 1 then ok := false;
              st := res.Interp.state;
              go (n - 1)
        in
        go 200;
        check Alcotest.bool "at most one shared access per step" true !ok);
  ]

(* --- program validation ---------------------------------------------------- *)

let validate_tests =
  [
    Alcotest.test_case "all bundled models validate" `Quick (fun () ->
        List.iter
          (fun (e : Icb_models.Registry.entry) ->
            (match e.correct_program with
            | Some p ->
              Alcotest.(check (result unit string))
                (e.model_name ^ " correct") (Ok ())
                (Icb_machine.Prog.validate (p ()))
            | None -> ());
            List.iter
              (fun (b : Icb_models.Registry.bug_spec) ->
                Alcotest.(check (result unit string))
                  (e.model_name ^ "/" ^ b.bug_name)
                  (Ok ())
                  (Icb_machine.Prog.validate (b.bug_program ())))
              e.bugs)
          Icb_models.Registry.all);
    Alcotest.test_case "validate catches a bad jump" `Quick (fun () ->
        let open Icb_machine in
        let prog =
          {
            Prog.globals = [||];
            syncs = [||];
            procs =
              [|
                {
                  Prog.pname = "main";
                  nparams = 0;
                  nregs = 1;
                  code = [| Instr.Jump 99 |];
                };
              |];
            main = 0;
          }
        in
        check Alcotest.bool "rejected" true
          (Result.is_error (Prog.validate prog)));
  ]

let () =
  Alcotest.run "machine"
    [
      ("arith", arith_tests);
      ("sync", sync_tests);
      ("atomic", atomic_tests);
      ("heap", heap_tests);
      ("signature", signature_tests);
      ("validate", validate_tests);
    ]
