module Bignat = Icb_util.Bignat
module Combin = Icb_util.Combin
module Fnv = Icb_util.Fnv
module Rng = Icb_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Bignat ------------------------------------------------------------- *)

let small_nat = QCheck.Gen.int_range 0 1_000_000

let pair_nat = QCheck.make QCheck.Gen.(pair small_nat small_nat)

let triple_nat = QCheck.make QCheck.Gen.(triple small_nat small_nat small_nat)

let bignat_tests =
  [
    Alcotest.test_case "zero and one" `Quick (fun () ->
        check Alcotest.string "zero" "0" (Bignat.to_string Bignat.zero);
        check Alcotest.string "one" "1" (Bignat.to_string Bignat.one));
    Alcotest.test_case "of_int negative rejected" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Bignat.of_int: negative") (fun () ->
            ignore (Bignat.of_int (-1))));
    Alcotest.test_case "factorial 20" `Quick (fun () ->
        check Alcotest.string "20!" "2432902008176640000"
          (Bignat.to_string (Bignat.factorial 20)));
    Alcotest.test_case "factorial 30 (multi-limb)" `Quick (fun () ->
        check Alcotest.string "30!" "265252859812191058636308480000000"
          (Bignat.to_string (Bignat.factorial 30)));
    Alcotest.test_case "binomial values" `Quick (fun () ->
        check Alcotest.string "C(52,5)" "2598960"
          (Bignat.to_string (Bignat.binomial 52 5));
        check Alcotest.string "C(100,50)"
          "100891344545564193334812497256"
          (Bignat.to_string (Bignat.binomial 100 50));
        check Alcotest.bool "C(5,7) = 0" true
          (Bignat.equal (Bignat.binomial 5 7) Bignat.zero);
        check Alcotest.bool "C(5,-1) = 0" true
          (Bignat.equal (Bignat.binomial 5 (-1)) Bignat.zero));
    Alcotest.test_case "sub underflow rejected" `Quick (fun () ->
        Alcotest.check_raises "sub"
          (Invalid_argument "Bignat.sub: negative result") (fun () ->
            ignore (Bignat.sub (Bignat.of_int 3) (Bignat.of_int 4))));
    Alcotest.test_case "div_int_exact" `Quick (fun () ->
        check Alcotest.string "6/3" "2"
          (Bignat.to_string (Bignat.div_int_exact (Bignat.of_int 6) 3));
        Alcotest.check_raises "inexact"
          (Invalid_argument "Bignat.div_int_exact: inexact") (fun () ->
            ignore (Bignat.div_int_exact (Bignat.of_int 7) 3)));
    Alcotest.test_case "pow" `Quick (fun () ->
        check Alcotest.string "2^100" "1267650600228229401496703205376"
          (Bignat.to_string (Bignat.pow (Bignat.of_int 2) 100));
        check Alcotest.string "x^0" "1"
          (Bignat.to_string (Bignat.pow (Bignat.of_int 12345) 0)));
    qtest
      (QCheck.Test.make ~name:"roundtrip via to_int_opt" ~count:500
         (QCheck.make small_nat) (fun n ->
           Bignat.to_int_opt (Bignat.of_int n) = Some n));
    qtest
      (QCheck.Test.make ~name:"add matches native" ~count:500 pair_nat
         (fun (a, b) ->
           Bignat.to_int_opt (Bignat.add (Bignat.of_int a) (Bignat.of_int b))
           = Some (a + b)));
    qtest
      (QCheck.Test.make ~name:"mul matches native" ~count:500 pair_nat
         (fun (a, b) ->
           Bignat.to_string (Bignat.mul (Bignat.of_int a) (Bignat.of_int b))
           = string_of_int (a * b)));
    qtest
      (QCheck.Test.make ~name:"sub inverts add" ~count:500 pair_nat
         (fun (a, b) ->
           Bignat.equal
             (Bignat.sub (Bignat.add (Bignat.of_int a) (Bignat.of_int b))
                (Bignat.of_int b))
             (Bignat.of_int a)));
    qtest
      (QCheck.Test.make ~name:"mul distributes over add" ~count:200 triple_nat
         (fun (a, b, c) ->
           let n = Bignat.of_int in
           Bignat.equal
             (Bignat.mul (n a) (Bignat.add (n b) (n c)))
             (Bignat.add (Bignat.mul (n a) (n b)) (Bignat.mul (n a) (n c)))));
    qtest
      (QCheck.Test.make ~name:"mul_int agrees with mul" ~count:500 pair_nat
         (fun (a, b) ->
           Bignat.equal
             (Bignat.mul_int (Bignat.of_int a) b)
             (Bignat.mul (Bignat.of_int a) (Bignat.of_int b))));
    qtest
      (QCheck.Test.make ~name:"compare is a total order consistent with ints"
         ~count:500 pair_nat (fun (a, b) ->
           Bignat.compare (Bignat.of_int a) (Bignat.of_int b)
           = Stdlib.compare a b));
    qtest
      (QCheck.Test.make ~name:"Pascal's rule" ~count:200
         (QCheck.make QCheck.Gen.(pair (int_range 1 60) (int_range 1 60)))
         (fun (n, k) ->
           let k = min k n in
           Bignat.equal (Bignat.binomial n k)
             (Bignat.add
                (Bignat.binomial (n - 1) (k - 1))
                (Bignat.binomial (n - 1) k))));
    qtest
      (QCheck.Test.make ~name:"binomial symmetry" ~count:200
         (QCheck.make QCheck.Gen.(pair (int_range 0 80) (int_range 0 80)))
         (fun (n, k) ->
           let k = min k n in
           Bignat.equal (Bignat.binomial n k) (Bignat.binomial n (n - k))));
  ]

(* --- Combin ------------------------------------------------------------- *)

let combin_tests =
  [
    Alcotest.test_case "theorem 1 bound, zero preemptions" `Quick (fun () ->
        (* C(nk,0) * (nb)! = (nb)! *)
        check Alcotest.string "n=2 k=3 b=1 c=0" "2"
          (Bignat.to_string (Combin.theorem1_bound ~n:2 ~k:3 ~b:1 ~c:0)));
    Alcotest.test_case "theorem 1 bound, general" `Quick (fun () ->
        (* C(6,2) * (2+2)! = 15 * 24 = 360 *)
        check Alcotest.string "n=2 k=3 b=1 c=2" "360"
          (Bignat.to_string (Combin.theorem1_bound ~n:2 ~k:3 ~b:1 ~c:2)));
    Alcotest.test_case "nonblocking bound" `Quick (fun () ->
        (* (n^2 k)^c * n! with n=2,k=3,c=1: 12 * 2 = 24 *)
        check Alcotest.string "nonblocking" "24"
          (Bignat.to_string (Combin.nonblocking_bound ~n:2 ~k:3 ~c:1)));
    Alcotest.test_case "total executions (nk)!/(k!)^n" `Quick (fun () ->
        (* n=2, k=2: 4!/(2!2!) = 6 *)
        check Alcotest.string "n=2 k=2" "6"
          (Bignat.to_string (Combin.total_executions_upper ~n:2 ~k:2));
        (* n=3, k=2: 6!/(2!)^3 = 90 *)
        check Alcotest.string "n=3 k=2" "90"
          (Bignat.to_string (Combin.total_executions_upper ~n:3 ~k:2)));
    qtest
      (QCheck.Test.make ~name:"theorem1 grows with c" ~count:100
         (QCheck.make
            QCheck.Gen.(
              quad (int_range 1 4) (int_range 1 6) (int_range 1 3)
                (int_range 0 4)))
         (fun (n, k, b, c) ->
           (* the bound with c+1 preemptions dominates the bound with c,
              as long as preemption slots remain *)
           QCheck.assume ((n * k) - c > 0);
           Bignat.compare
             (Combin.theorem1_bound ~n ~k ~b ~c:(c + 1))
             (Combin.theorem1_bound ~n ~k ~b ~c)
           >= 0));
  ]

(* --- Fnv ---------------------------------------------------------------- *)

let fnv_tests =
  [
    Alcotest.test_case "known vector" `Quick (fun () ->
        (* FNV-1a 64 of empty input is the offset basis *)
        check Alcotest.string "empty" "cbf29ce484222325"
          (Fnv.to_hex (Fnv.hash_string "")));
    Alcotest.test_case "distinct strings hash differently" `Quick (fun () ->
        check Alcotest.bool "a vs b" true
          (Fnv.hash_string "a" <> Fnv.hash_string "b");
        check Alcotest.bool "order sensitive" true
          (Fnv.hash_string "ab" <> Fnv.hash_string "ba"));
    qtest
      (QCheck.Test.make ~name:"string hashing is prefix-incremental" ~count:300
         (QCheck.make QCheck.Gen.(pair string string)) (fun (a, b) ->
           Fnv.string (Fnv.hash_string a) b = Fnv.hash_string (a ^ b)));
    qtest
      (QCheck.Test.make ~name:"combine_commutative commutes" ~count:300
         (QCheck.make QCheck.Gen.(pair string string)) (fun (a, b) ->
           let ha = Fnv.hash_string a and hb = Fnv.hash_string b in
           Fnv.combine_commutative ha hb = Fnv.combine_commutative hb ha));
    qtest
      (QCheck.Test.make ~name:"int feeding differs from int64 of other value"
         ~count:300
         (QCheck.make QCheck.Gen.(pair int int))
         (fun (a, b) ->
           QCheck.assume (a <> b);
           Fnv.int Fnv.basis a <> Fnv.int Fnv.basis b));
  ]

(* --- Rng ---------------------------------------------------------------- *)

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Rng.create 42L and b = Rng.create 42L in
        for _ = 1 to 100 do
          check Alcotest.int64 "step" (Rng.next_int64 a) (Rng.next_int64 b)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Rng.create 1L and b = Rng.create 2L in
        check Alcotest.bool "diverge" true (Rng.next_int64 a <> Rng.next_int64 b));
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: non-positive bound")
          (fun () -> ignore (Rng.int (Rng.create 0L) 0)));
    Alcotest.test_case "pick rejects empty" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
          (fun () -> ignore (Rng.pick (Rng.create 0L) ([] : int list))));
    qtest
      (QCheck.Test.make ~name:"int stays in bounds" ~count:500
         (QCheck.make QCheck.Gen.(pair int64 (int_range 1 1000)))
         (fun (seed, bound) ->
           let r = Rng.create seed in
           let v = Rng.int r bound in
           v >= 0 && v < bound));
    qtest
      (QCheck.Test.make ~name:"pick returns a member" ~count:300
         (QCheck.make QCheck.Gen.(pair int64 (list_size (int_range 1 20) int)))
         (fun (seed, l) ->
           List.mem (Rng.pick (Rng.create seed) l) l));
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let a = Rng.create 7L in
        let b = Rng.split a in
        check Alcotest.bool "values differ" true
          (Rng.next_int64 a <> Rng.next_int64 b));
  ]

let () =
  Alcotest.run "util"
    [
      ("bignat", bignat_tests);
      ("combin", combin_tests);
      ("fnv", fnv_tests);
      ("rng", rng_tests);
    ]
